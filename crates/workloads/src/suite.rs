//! The ten-benchmark suite (Table III).
//!
//! | class | benchmarks |
//! |---|---|
//! | L (latency-sensitive)   | mcf, milc, libquantum, disparity |
//! | B (bandwidth-sensitive) | mser, lbm, tracking |
//! | N (non-memory-intensive)| gcc, sift, stitch |
//!
//! Per-object behaviours follow the structure of the real benchmarks (mcf
//! chases arc/node graphs, lbm streams two lattice grids, gcc hashes small
//! tables that mostly cache, disparity has one high- and one lower-MPKI
//! major object per §VI-A, milc/mser carry a few intensive objects plus many
//! quiet ones per §II-B) with magnitudes calibrated against Fig. 1/Fig. 2.

use crate::spec::{AppSpec, ObjectSpec, Pattern};
use moca_common::{ObjectClass, KB, MB};

/// Convenience constructor for an object spec. Synthetic code addresses are
/// derived from `app_base` so that alloc sites are unique per app, except
/// where a spec deliberately reuses a site with different callers to
/// exercise the naming convention (Fig. 3).
#[allow(clippy::too_many_arguments)]
fn obj(
    label: &'static str,
    alloc_site: u64,
    call_stack: &[u64],
    nominal_bytes: u64,
    weight: f64,
    pattern: Pattern,
    write_fraction: f64,
    burst: u32,
) -> ObjectSpec {
    ObjectSpec {
        label,
        alloc_site,
        call_stack: call_stack.to_vec(),
        nominal_bytes,
        weight,
        pattern,
        write_fraction,
        burst,
        chain_group: None,
    }
}

/// Same as [`obj`] but placing the object in dependence-chain `group`.
#[allow(clippy::too_many_arguments)]
fn obj_chained(
    label: &'static str,
    alloc_site: u64,
    call_stack: &[u64],
    nominal_bytes: u64,
    weight: f64,
    pattern: Pattern,
    write_fraction: f64,
    burst: u32,
    group: u8,
) -> ObjectSpec {
    ObjectSpec {
        chain_group: Some(group),
        ..obj(
            label,
            alloc_site,
            call_stack,
            nominal_bytes,
            weight,
            pattern,
            write_fraction,
            burst,
        )
    }
}

fn mcf() -> AppSpec {
    let b = 0x0040_1000;
    AppSpec {
        name: "mcf",
        expected_class: ObjectClass::LatencySensitive,
        mem_fraction: 0.34,
        branch_fraction: 0.16,
        mispredict_rate: 0.04,
        stack_fraction: 0.10,
        stack_working_set: 16 * KB,
        code_bytes: 24 * KB,
        branch_jump_prob: 0.20,
        objects: vec![
            // The network-simplex arc array: the canonical pointer chase.
            obj_chained(
                "arcs",
                b + 0x10,
                &[b + 0x900],
                280 * MB,
                0.40,
                Pattern::Chase,
                0.10,
                4,
                0,
            ),
            // Node array, chased *from* the arcs: one dependence chain
            // spans both objects, as in the real network-simplex walk.
            obj_chained(
                "nodes",
                b + 0x20,
                &[b + 0x900],
                130 * MB,
                0.22,
                Pattern::Chase,
                0.10,
                4,
                0,
            ),
            // Candidate-list basket, rebuilt each iteration (cache-resident
            // at simulation scale: a low-MPKI object inside an L app).
            obj(
                "basket",
                b + 0x30,
                &[b + 0x910],
                8 * MB,
                0.10,
                Pattern::Random,
                0.25,
                2,
            ),
            // Small permutation table, cache-resident.
            obj(
                "perm",
                b + 0x40,
                &[b + 0x910],
                2 * MB,
                0.28,
                Pattern::hot(160 * KB),
                0.30,
                2,
            ),
        ],
        phases: None,
    }
}

fn milc() -> AppSpec {
    let b = 0x0042_1000;
    AppSpec {
        name: "milc",
        expected_class: ObjectClass::LatencySensitive,
        mem_fraction: 0.34,
        branch_fraction: 0.10,
        mispredict_rate: 0.01,
        stack_fraction: 0.08,
        stack_working_set: 16 * KB,
        code_bytes: 48 * KB,
        branch_jump_prob: 0.10,
        objects: vec![
            // Lattice traversed through site-neighbour indirection.
            obj(
                "lattice",
                b + 0x10,
                &[b + 0xA00],
                290 * MB,
                0.32,
                Pattern::Chase,
                0.15,
                4,
            ),
            // Gauge links updated in dependence order.
            obj(
                "gauge",
                b + 0x20,
                &[b + 0xA00],
                150 * MB,
                0.22,
                Pattern::StreamDep { stride: 5 },
                0.20,
                6,
            ),
            // Momentum field, streamed.
            obj(
                "mom",
                b + 0x30,
                &[b + 0xA10],
                48 * MB,
                0.12,
                Pattern::Stream { stride: 5 },
                0.30,
                8,
            ),
            // Small scratch buffers, cache-resident (§II-B: "only a few
            // memory objects with high L2 MPKI").
            obj(
                "tmp_mat",
                b + 0x40,
                &[b + 0xA20],
                4 * MB,
                0.20,
                Pattern::hot(192 * KB),
                0.40,
                2,
            ),
            obj(
                "tmp_vec",
                b + 0x50,
                &[b + 0xA20],
                2 * MB,
                0.14,
                Pattern::hot(96 * KB),
                0.40,
                2,
            ),
        ],
        phases: None,
    }
}

fn libquantum() -> AppSpec {
    let b = 0x0044_1000;
    AppSpec {
        name: "libquantum",
        expected_class: ObjectClass::LatencySensitive,
        mem_fraction: 0.34,
        branch_fraction: 0.14,
        mispredict_rate: 0.005,
        stack_fraction: 0.06,
        stack_working_set: 8 * KB,
        code_bytes: 16 * KB,
        branch_jump_prob: 0.05,
        objects: vec![
            // The quantum register: each gate sweep reads and rewrites the
            // amplitude vector with loop-carried dependences.
            obj(
                "reg",
                b + 0x10,
                &[b + 0xB00],
                380 * MB,
                0.80,
                Pattern::StreamDep { stride: 7 },
                0.35,
                8,
            ),
            // Gate workspace, small and hot.
            obj(
                "workspace",
                b + 0x20,
                &[b + 0xB10],
                MB,
                0.20,
                Pattern::hot(96 * KB),
                0.30,
                2,
            ),
        ],
        phases: None,
    }
}

fn disparity() -> AppSpec {
    let b = 0x0046_1000;
    // `alloc_image` wrapper: same malloc site, different callers (exercises
    // the Fig. 3 naming convention).
    let alloc_image = b + 0x10;
    AppSpec {
        name: "disparity",
        expected_class: ObjectClass::LatencySensitive,
        mem_fraction: 0.40,
        branch_fraction: 0.12,
        mispredict_rate: 0.02,
        stack_fraction: 0.10,
        stack_working_set: 12 * KB,
        code_bytes: 32 * KB,
        branch_jump_prob: 0.10,
        objects: vec![
            // §VI-A: "disparity has two major memory objects, one with a
            // high L2MPKI and the other with a relatively low L2MPKI";
            // the lower-MPKI one (SAD) is instantiated first, which is why
            // Heter-App lets it fill the RLDRAM module.
            obj(
                "SAD",
                alloc_image,
                &[b + 0xC10, b + 0xE00],
                160 * MB,
                0.26,
                Pattern::StreamDep { stride: 7 },
                0.30,
                10,
            ),
            obj(
                "imgDisp",
                alloc_image,
                &[b + 0xC00, b + 0xE00],
                300 * MB,
                0.40,
                Pattern::Chase,
                0.12,
                4,
            ),
            obj(
                "filtered",
                b + 0x20,
                &[b + 0xC20],
                16 * MB,
                0.18,
                Pattern::hot(176 * KB),
                0.35,
                3,
            ),
            obj(
                "params",
                b + 0x30,
                &[b + 0xC20],
                MB,
                0.16,
                Pattern::hot(64 * KB),
                0.20,
                2,
            ),
        ],
        phases: None,
    }
}

fn lbm() -> AppSpec {
    let b = 0x0048_1000;
    AppSpec {
        name: "lbm",
        expected_class: ObjectClass::BandwidthSensitive,
        mem_fraction: 0.46,
        branch_fraction: 0.06,
        mispredict_rate: 0.002,
        stack_fraction: 0.05,
        stack_working_set: 8 * KB,
        code_bytes: 12 * KB,
        branch_jump_prob: 0.02,
        objects: vec![
            // The two lattice-Boltzmann grids, streamed every timestep.
            obj(
                "srcGrid",
                b + 0x10,
                &[b + 0xD00],
                190 * MB,
                0.44,
                Pattern::Stream { stride: 7 },
                0.05,
                10,
            ),
            obj(
                "dstGrid",
                b + 0x20,
                &[b + 0xD00],
                190 * MB,
                0.40,
                Pattern::Stream { stride: 7 },
                0.60,
                10,
            ),
            obj(
                "flags",
                b + 0x30,
                &[b + 0xD10],
                24 * MB,
                0.16,
                Pattern::Stream { stride: 3 },
                0.00,
                16,
            ),
        ],
        phases: None,
    }
}

fn mser() -> AppSpec {
    let b = 0x004A_1000;
    AppSpec {
        name: "mser",
        expected_class: ObjectClass::BandwidthSensitive,
        mem_fraction: 0.40,
        branch_fraction: 0.14,
        mispredict_rate: 0.02,
        stack_fraction: 0.08,
        stack_working_set: 12 * KB,
        code_bytes: 20 * KB,
        branch_jump_prob: 0.08,
        objects: vec![
            // Flood-fill visits pixels in precomputed sorted order: random
            // addresses but independent loads.
            obj(
                "img",
                b + 0x10,
                &[b + 0xE00],
                180 * MB,
                0.32,
                Pattern::Random,
                0.10,
                4,
            ),
            obj(
                "regions",
                b + 0x20,
                &[b + 0xE00],
                120 * MB,
                0.22,
                Pattern::Stream { stride: 7 },
                0.35,
                8,
            ),
            // §II-B: many quiet objects around a few intensive ones.
            obj(
                "boundary",
                b + 0x30,
                &[b + 0xE10],
                4 * MB,
                0.18,
                Pattern::hot(128 * KB),
                0.40,
                2,
            ),
            obj(
                "hist",
                b + 0x40,
                &[b + 0xE10],
                MB,
                0.14,
                Pattern::hot(64 * KB),
                0.30,
                2,
            ),
            obj(
                "labels",
                b + 0x50,
                &[b + 0xE20],
                8 * MB,
                0.14,
                Pattern::hot(160 * KB),
                0.50,
                2,
            ),
        ],
        phases: None,
    }
}

fn tracking() -> AppSpec {
    let b = 0x004C_1000;
    let alloc_pyr = b + 0x10;
    AppSpec {
        name: "tracking",
        expected_class: ObjectClass::BandwidthSensitive,
        mem_fraction: 0.42,
        branch_fraction: 0.10,
        mispredict_rate: 0.01,
        stack_fraction: 0.08,
        stack_working_set: 12 * KB,
        code_bytes: 28 * KB,
        branch_jump_prob: 0.06,
        objects: vec![
            obj(
                "features",
                b + 0x20,
                &[b + 0xF00],
                160 * MB,
                0.36,
                Pattern::Stream { stride: 7 },
                0.15,
                10,
            ),
            // Image pyramid levels share an allocation wrapper.
            obj(
                "pyramid0",
                alloc_pyr,
                &[b + 0xF10, b + 0xF40],
                120 * MB,
                0.22,
                Pattern::Random,
                0.10,
                4,
            ),
            obj(
                "pyramid1",
                alloc_pyr,
                &[b + 0xF20, b + 0xF40],
                60 * MB,
                0.20,
                Pattern::Stream { stride: 5 },
                0.20,
                10,
            ),
            obj(
                "coords",
                b + 0x30,
                &[b + 0xF30],
                2 * MB,
                0.22,
                Pattern::hot(128 * KB),
                0.35,
                2,
            ),
        ],
        phases: None,
    }
}

fn gcc() -> AppSpec {
    let b = 0x004E_1000;
    AppSpec {
        name: "gcc",
        expected_class: ObjectClass::NonIntensive,
        mem_fraction: 0.30,
        branch_fraction: 0.20,
        mispredict_rate: 0.05,
        stack_fraction: 0.18,
        stack_working_set: 24 * KB,
        code_bytes: 96 * KB,
        branch_jump_prob: 0.20,
        objects: vec![
            // §VI-A: gcc has one higher-L2MPKI object MOCA promotes to
            // RLDRAM while the rest stay in LPDDR. A working set slightly
            // beyond the L2 gives it MPKI just above Thr_Lat.
            obj(
                "symtab",
                b + 0x10,
                &[b + 0x800],
                48 * MB,
                0.26,
                Pattern::Hot {
                    working_set: 96 * KB,
                    cold_fraction: 0.05,
                    chase: true,
                },
                0.25,
                2,
            ),
            obj(
                "rtl",
                b + 0x20,
                &[b + 0x800],
                8 * MB,
                0.30,
                Pattern::Hot {
                    working_set: 64 * KB,
                    cold_fraction: 0.010,
                    chase: false,
                },
                0.35,
                2,
            ),
            obj(
                "strings",
                b + 0x30,
                &[b + 0x810],
                4 * MB,
                0.22,
                Pattern::Hot {
                    working_set: 32 * KB,
                    cold_fraction: 0.005,
                    chase: false,
                },
                0.15,
                2,
            ),
            obj(
                "flags",
                b + 0x40,
                &[b + 0x820],
                512 * KB,
                0.22,
                Pattern::hot(24 * KB),
                0.30,
                2,
            ),
        ],
        phases: None,
    }
}

fn sift() -> AppSpec {
    let b = 0x0050_1000;
    AppSpec {
        name: "sift",
        expected_class: ObjectClass::NonIntensive,
        mem_fraction: 0.32,
        branch_fraction: 0.12,
        mispredict_rate: 0.015,
        stack_fraction: 0.12,
        stack_working_set: 16 * KB,
        code_bytes: 40 * KB,
        branch_jump_prob: 0.10,
        objects: vec![
            obj(
                "octaves",
                b + 0x10,
                &[b + 0x900],
                64 * MB,
                0.46,
                Pattern::Hot {
                    working_set: 160 * KB,
                    cold_fraction: 0.012,
                    chase: false,
                },
                0.25,
                3,
            ),
            obj(
                "keypoints",
                b + 0x20,
                &[b + 0x910],
                8 * MB,
                0.30,
                Pattern::Hot {
                    working_set: 96 * KB,
                    cold_fraction: 0.008,
                    chase: false,
                },
                0.40,
                2,
            ),
            obj(
                "descriptors",
                b + 0x30,
                &[b + 0x920],
                16 * MB,
                0.24,
                Pattern::Hot {
                    working_set: 128 * KB,
                    cold_fraction: 0.010,
                    chase: false,
                },
                0.45,
                2,
            ),
        ],
        phases: None,
    }
}

fn stitch() -> AppSpec {
    let b = 0x0052_1000;
    AppSpec {
        name: "stitch",
        expected_class: ObjectClass::NonIntensive,
        mem_fraction: 0.30,
        branch_fraction: 0.12,
        mispredict_rate: 0.02,
        stack_fraction: 0.12,
        stack_working_set: 16 * KB,
        code_bytes: 36 * KB,
        branch_jump_prob: 0.12,
        objects: vec![
            obj(
                "panorama",
                b + 0x10,
                &[b + 0x900],
                56 * MB,
                0.40,
                Pattern::Hot {
                    working_set: 128 * KB,
                    cold_fraction: 0.015,
                    chase: false,
                },
                0.35,
                3,
            ),
            obj(
                "matches",
                b + 0x20,
                &[b + 0x910],
                12 * MB,
                0.28,
                Pattern::Hot {
                    working_set: 96 * KB,
                    cold_fraction: 0.006,
                    chase: false,
                },
                0.30,
                2,
            ),
            obj(
                "homography",
                b + 0x30,
                &[b + 0x920],
                MB,
                0.18,
                Pattern::hot(32 * KB),
                0.25,
                2,
            ),
            obj(
                "blend",
                b + 0x40,
                &[b + 0x930],
                10 * MB,
                0.14,
                Pattern::hot(96 * KB),
                0.50,
                2,
            ),
        ],
        phases: None,
    }
}

/// All ten benchmarks, in the paper's Table III order (L, B, N).
pub fn suite() -> Vec<AppSpec> {
    vec![
        mcf(),
        milc(),
        libquantum(),
        disparity(),
        mser(),
        lbm(),
        tracking(),
        gcc(),
        sift(),
        stitch(),
    ]
}

/// Look up one benchmark by name. Panics on unknown names (a typo in an
/// experiment definition).
pub fn app_by_name(name: &str) -> AppSpec {
    suite()
        .into_iter()
        .find(|a| a.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_validate() {
        for app in suite() {
            app.validate();
        }
    }

    #[test]
    fn table3_composition() {
        let by_class = |c: ObjectClass| {
            suite()
                .into_iter()
                .filter(|a| a.expected_class == c)
                .count()
        };
        assert_eq!(by_class(ObjectClass::LatencySensitive), 4);
        assert_eq!(by_class(ObjectClass::BandwidthSensitive), 3);
        assert_eq!(by_class(ObjectClass::NonIntensive), 3);
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> = suite().iter().map(|a| a.name).collect();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn footprints_fit_nominal_machine() {
        // Any single app must fit the 2 GB machine; the largest 4-app set
        // must too (with room for stack/code/data pages).
        let mut fps: Vec<u64> = suite().iter().map(|a| a.nominal_footprint()).collect();
        for &f in &fps {
            assert!(f < 1024 * MB, "single-app footprint too large: {f}");
        }
        fps.sort_unstable();
        let worst4: u64 = fps.iter().rev().take(4).sum();
        assert!(
            worst4 < 1900 * MB,
            "worst 4-app set exceeds the 2 GB machine: {worst4}"
        );
    }

    #[test]
    fn latency_apps_exceed_rldram_capacity() {
        // The §VI-A contention story requires L-app footprints above the
        // 256 MB RLDRAM module.
        for app in suite() {
            if app.expected_class == ObjectClass::LatencySensitive {
                assert!(
                    app.nominal_footprint() > 256 * MB,
                    "{} should overflow RLDRAM",
                    app.name
                );
            }
        }
    }

    #[test]
    fn shared_alloc_sites_have_distinct_stacks() {
        // disparity and tracking deliberately reuse a malloc wrapper site;
        // the (site, stack) pair must still be unique per object.
        for app in suite() {
            let mut seen = std::collections::HashSet::new();
            for o in &app.objects {
                assert!(
                    seen.insert((o.alloc_site, o.call_stack.clone())),
                    "{}/{}: duplicate naming key",
                    app.name,
                    o.label
                );
            }
        }
    }

    #[test]
    fn app_by_name_finds_all() {
        for app in suite() {
            assert_eq!(app_by_name(app.name).name, app.name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn app_by_name_rejects_unknown() {
        app_by_name("doom");
    }
}
