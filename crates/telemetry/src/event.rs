//! Cycle-stamped structured events emitted by the simulator.
//!
//! Every event is a plain value: recording one mutates only the telemetry
//! sink, never the simulated machine, so runs with and without telemetry are
//! bit-identical. Events carry raw identifiers (core/channel/app indices)
//! rather than references so sinks can buffer or serialize them freely.

use moca_common::{Cycle, ModuleKind};
use serde::Serialize;

/// Page-use intent as seen by telemetry — a mirror of the VM layer's
/// `PageIntent`, kept here so this crate depends only on `moca-common`.
/// The simulator converts at the emission site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EventIntent {
    /// Latency-sensitive heap partition.
    LatHeap,
    /// Bandwidth-sensitive heap partition.
    BwHeap,
    /// Non-intensive (power) heap partition.
    PowHeap,
    /// Stack page.
    Stack,
    /// Code page.
    Code,
    /// Global-data page.
    Data,
}

/// One structured simulator event. The cycle stamp travels alongside (see
/// [`TimedEvent`] and [`crate::Sink::emit`]).
#[derive(Debug, Clone, Serialize)]
pub enum Event {
    /// First touch of an unmapped virtual page entered the fault handler.
    PageFault {
        /// Faulting application.
        app: u32,
        /// Virtual page number.
        vpn: u64,
        /// What the page is used for.
        intent: EventIntent,
    },
    /// The placement policy picked a physical frame for a faulting page.
    Placement {
        /// Owning application.
        app: u32,
        /// Virtual page number.
        vpn: u64,
        /// Physical frame chosen.
        pfn: u64,
        /// Module technology the frame lives on.
        kind: ModuleKind,
        /// What the page is used for.
        intent: EventIntent,
    },
    /// The page landed on a different module than the policy's first
    /// preference (the §IV-D fallback chain engaged).
    FallbackAllocation {
        /// Owning application.
        app: u32,
        /// Virtual page number.
        vpn: u64,
        /// Module the page actually landed on.
        got: ModuleKind,
        /// Module the policy would have preferred.
        preferred: ModuleKind,
    },
    /// A demand miss was rejected because every L2 MSHR is in use; the core
    /// retries the access next cycle.
    MshrFullStall {
        /// Stalling core.
        core: u32,
    },
    /// An activate had to close an already-open row first (row-buffer
    /// conflict: PRE + ACT instead of a CAS hit).
    BankConflict {
        /// Channel index.
        channel: u32,
        /// Bank index within the channel.
        bank: u32,
    },
    /// A refresh window began, blocking the channel for `cycles` (tRFC).
    RefreshStart {
        /// Channel index.
        channel: u32,
        /// Length of the blocked window in cycles.
        cycles: Cycle,
    },
    /// Offline classification verdict for an application (`object: None`)
    /// or one of its memory objects.
    ClassificationVerdict {
        /// Benchmark name.
        app: String,
        /// Object index in spec order, `None` for the app-level verdict.
        object: Option<u32>,
        /// Class letter (`L`/`B`/`N`).
        class: char,
    },
    /// A core reached its instruction target: its statistics freeze here
    /// while it keeps running to preserve contention.
    CoreWindowFrozen {
        /// The core.
        core: u32,
        /// Instructions committed at the freeze point.
        committed: u64,
        /// Measured-window length in cycles.
        window_cycles: Cycle,
    },
    /// A dynamic page-migration epoch completed (cumulative counters).
    MigrationEpoch {
        /// Epochs completed so far.
        epoch: u64,
        /// Pages promoted so far.
        promotions: u64,
        /// Pages demoted so far.
        demotions: u64,
    },
}

impl Event {
    /// Number of event kinds (sizes the per-kind counter table).
    pub const KIND_COUNT: usize = 9;

    /// Stable snake_case names, indexed by [`Event::kind_index`].
    pub const KIND_NAMES: [&'static str; Self::KIND_COUNT] = [
        "page_fault",
        "placement",
        "fallback_allocation",
        "mshr_full_stall",
        "bank_conflict",
        "refresh_start",
        "classification_verdict",
        "core_window_frozen",
        "migration_epoch",
    ];

    /// Dense index of this event's kind.
    pub fn kind_index(&self) -> usize {
        match self {
            Event::PageFault { .. } => 0,
            Event::Placement { .. } => 1,
            Event::FallbackAllocation { .. } => 2,
            Event::MshrFullStall { .. } => 3,
            Event::BankConflict { .. } => 4,
            Event::RefreshStart { .. } => 5,
            Event::ClassificationVerdict { .. } => 6,
            Event::CoreWindowFrozen { .. } => 7,
            Event::MigrationEpoch { .. } => 8,
        }
    }

    /// Stable snake_case name of this event's kind.
    pub fn kind_name(&self) -> &'static str {
        Self::KIND_NAMES[self.kind_index()]
    }

    /// Chrome-trace track (tid) the event renders on: cores on 0..N,
    /// channels on 100+, everything else on track 99.
    pub fn track(&self) -> u32 {
        match self {
            Event::PageFault { app, .. }
            | Event::Placement { app, .. }
            | Event::FallbackAllocation { app, .. } => *app,
            Event::MshrFullStall { core } | Event::CoreWindowFrozen { core, .. } => *core,
            Event::BankConflict { channel, .. } | Event::RefreshStart { channel, .. } => {
                100 + *channel
            }
            Event::ClassificationVerdict { .. } | Event::MigrationEpoch { .. } => 99,
        }
    }
}

/// An event plus the cycle it occurred at.
#[derive(Debug, Clone, Serialize)]
pub struct TimedEvent {
    /// Simulated cycle of the event (1 cycle = 1 ns at the 1 GHz core).
    pub at: Cycle,
    /// The event itself.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_align_with_indices() {
        let samples = [
            Event::PageFault {
                app: 0,
                vpn: 1,
                intent: EventIntent::Stack,
            },
            Event::Placement {
                app: 0,
                vpn: 1,
                pfn: 2,
                kind: ModuleKind::Hbm,
                intent: EventIntent::BwHeap,
            },
            Event::FallbackAllocation {
                app: 0,
                vpn: 1,
                got: ModuleKind::Hbm,
                preferred: ModuleKind::Rldram3,
            },
            Event::MshrFullStall { core: 0 },
            Event::BankConflict {
                channel: 0,
                bank: 1,
            },
            Event::RefreshStart {
                channel: 0,
                cycles: 160,
            },
            Event::ClassificationVerdict {
                app: "mcf".into(),
                object: None,
                class: 'L',
            },
            Event::CoreWindowFrozen {
                core: 0,
                committed: 1,
                window_cycles: 2,
            },
            Event::MigrationEpoch {
                epoch: 1,
                promotions: 0,
                demotions: 0,
            },
        ];
        assert_eq!(samples.len(), Event::KIND_COUNT);
        for (i, e) in samples.iter().enumerate() {
            assert_eq!(e.kind_index(), i);
            assert_eq!(e.kind_name(), Event::KIND_NAMES[i]);
        }
    }

    #[test]
    fn events_serialize_to_tagged_objects() {
        let e = Event::BankConflict {
            channel: 2,
            bank: 5,
        };
        let s = serde_json::to_string(&e).unwrap();
        assert!(s.contains("\"BankConflict\""), "{s}");
        assert!(
            s.contains("\"channel\": 2") || s.contains("\"channel\":2"),
            "{s}"
        );
    }
}
