//! `moca-telemetry`: observability for the MOCA simulator stack.
//!
//! Three layers, all strictly observational (a run with telemetry enabled
//! retires the exact same cycles and metrics as one without):
//!
//! 1. **Events** — cycle-stamped structured records ([`Event`]) routed
//!    through a pluggable [`Sink`] (no-op, bounded ring, or streaming JSONL).
//! 2. **Metrics** — a hierarchical counter/gauge/histogram [`Registry`] plus
//!    periodic [`WindowSnapshot`]s (per-window IPC, L2 MPKI, queue depths,
//!    bus occupancy, frame-pool headroom).
//! 3. **Export & self-profiling** — a Chrome-trace/Perfetto JSON exporter
//!    ([`write_chrome_trace`]) and host wall-time spans ([`HostProfiler`],
//!    [`ComponentTimes`]).
//!
//! The simulator threads a [`Telemetry`] value through its hot paths; when
//! disabled every record call is a branch on one bool and returns.

pub mod attribution;
mod event;
mod profiler;
mod progress;
mod registry;
mod sink;
mod trace;

pub use attribution::{
    tier_index, tier_name, AttrSnapshot, AttrTagTable, CoreAttr, CycleBuckets, Mechanism,
    OccupancySample, TagAttr, MECH_COUNT, TIER_COUNT, TIER_UNRESOLVED,
};
pub use event::{Event, EventIntent, TimedEvent};
pub use profiler::{ComponentTimes, HostProfiler, HostSpan};
pub use progress::ProgressReporter;
pub use registry::{
    CounterId, GaugeId, Histogram, HistogramId, Registry, WindowSnapshot, HISTOGRAM_BUCKETS,
};
pub use sink::{JsonlSink, NullSink, RingSink, Sink};
pub use trace::write_chrome_trace;

use moca_common::Cycle;

/// The telemetry context a simulation carries: per-kind event counters, the
/// metric registry, the event sink, and the sampling/profiling switches.
pub struct Telemetry {
    enabled: bool,
    host_profile: bool,
    /// Simulated-cycle length of each metrics window; `None` disables
    /// periodic sampling.
    pub window_cycles: Option<Cycle>,
    sink: Box<dyn Sink>,
    /// The metric registry (counters, gauges, histograms, windows).
    pub registry: Registry,
    /// Approximate host wall time per simulator component, filled by the
    /// system loop when host profiling is on.
    pub components: ComponentTimes,
    event_counters: [CounterId; Event::KIND_COUNT],
    hist_read_latency: HistogramId,
    hist_read_queue: HistogramId,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("host_profile", &self.host_profile)
            .field("window_cycles", &self.window_cycles)
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    fn build(enabled: bool, sink: Box<dyn Sink>) -> Telemetry {
        let mut registry = Registry::new();
        let event_counters =
            std::array::from_fn(|i| registry.counter(&format!("events.{}", Event::KIND_NAMES[i])));
        let hist_read_latency = registry.histogram("dram.read_latency_cycles");
        let hist_read_queue = registry.histogram("dram.read_queue_cycles");
        Telemetry {
            enabled,
            host_profile: false,
            window_cycles: None,
            sink,
            registry,
            components: ComponentTimes::default(),
            event_counters,
            hist_read_latency,
            hist_read_queue,
        }
    }

    /// Inert telemetry: every record call returns immediately. This is what
    /// `System::new` uses, so untraced runs pay one bool test per event site.
    pub fn disabled() -> Telemetry {
        Telemetry::build(false, Box::new(NullSink))
    }

    /// Enabled telemetry routing events to `sink`.
    pub fn with_sink(sink: Box<dyn Sink>) -> Telemetry {
        Telemetry::build(true, sink)
    }

    /// Enable periodic metric windows of `cycles` simulated cycles.
    pub fn with_window(mut self, cycles: Cycle) -> Telemetry {
        assert!(cycles > 0, "metrics window must be positive");
        self.window_cycles = Some(cycles);
        self
    }

    /// Enable per-component host wall-time accounting in the system loop.
    pub fn with_host_profiling(mut self) -> Telemetry {
        self.host_profile = true;
        self
    }

    /// Whether events/metrics are being recorded at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether the system loop should accumulate [`ComponentTimes`].
    #[inline]
    pub fn host_profiling(&self) -> bool {
        self.enabled && self.host_profile
    }

    /// Record one event at cycle `at`: bumps the per-kind counter and
    /// forwards to the sink. No-op when disabled.
    #[inline]
    pub fn record(&mut self, at: Cycle, event: Event) {
        if !self.enabled {
            return;
        }
        self.registry.inc(self.event_counters[event.kind_index()]);
        self.sink.emit(at, event);
    }

    /// Record a completed DRAM read: cycles queued before issue and total
    /// cycles to completion. No-op when disabled.
    #[inline]
    pub fn observe_read_latency(&mut self, queue_cycles: Cycle, total_cycles: Cycle) {
        if !self.enabled {
            return;
        }
        self.registry.observe(self.hist_read_queue, queue_cycles);
        self.registry.observe(self.hist_read_latency, total_cycles);
    }

    /// Append a completed sampling window.
    pub fn push_window(&mut self, w: WindowSnapshot) {
        self.registry.push_window(w);
    }

    /// Total events recorded (sum of the per-kind counters).
    pub fn events_recorded(&self) -> u64 {
        self.event_counters
            .iter()
            .map(|id| self.registry.counter_value(*id))
            .sum()
    }

    /// Drain buffered events out of the sink (empty for streaming sinks).
    pub fn drain_events(&mut self) -> Vec<TimedEvent> {
        self.sink.drain()
    }

    /// Flush the sink (streaming sinks buffer writes).
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.sink.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_records_nothing() {
        let mut tel = Telemetry::disabled();
        tel.record(10, Event::MshrFullStall { core: 0 });
        tel.observe_read_latency(5, 50);
        assert!(!tel.enabled());
        assert!(!tel.host_profiling());
        assert_eq!(tel.events_recorded(), 0);
        assert_eq!(
            tel.registry.counter_value_by_name("events.mshr_full_stall"),
            Some(0)
        );
        assert!(tel.drain_events().is_empty());
    }

    #[test]
    fn enabled_telemetry_counts_and_buffers() {
        let mut tel = Telemetry::with_sink(Box::new(RingSink::new(8)))
            .with_window(1000)
            .with_host_profiling();
        assert!(tel.enabled());
        assert!(tel.host_profiling());
        assert_eq!(tel.window_cycles, Some(1000));
        tel.record(1, Event::MshrFullStall { core: 0 });
        tel.record(2, Event::MshrFullStall { core: 1 });
        tel.record(
            3,
            Event::BankConflict {
                channel: 0,
                bank: 3,
            },
        );
        tel.observe_read_latency(4, 44);
        assert_eq!(tel.events_recorded(), 3);
        assert_eq!(
            tel.registry.counter_value_by_name("events.mshr_full_stall"),
            Some(2)
        );
        assert_eq!(
            tel.registry.counter_value_by_name("events.bank_conflict"),
            Some(1)
        );
        assert_eq!(
            tel.registry
                .histogram_by_name("dram.read_latency_cycles")
                .unwrap()
                .count(),
            1
        );
        let events = tel.drain_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].at, 1);
    }
}
