//! Host-side self-profiling: wall-time spans per repro phase and per
//! simulator component, reported alongside the simulated results.

use std::time::{Duration, Instant};

/// One completed wall-time span.
#[derive(Debug, Clone)]
pub struct HostSpan {
    /// What the span covered (e.g. `fig8_fig9`, `traced-run`).
    pub label: String,
    /// Start offset from the profiler's epoch.
    pub start: Duration,
    /// Wall time spent.
    pub duration: Duration,
}

/// Records labelled wall-time spans against a fixed epoch so they can be
/// exported as Chrome-trace "X" (complete) events on the host track.
#[derive(Debug)]
pub struct HostProfiler {
    epoch: Instant,
    spans: Vec<HostSpan>,
}

impl Default for HostProfiler {
    fn default() -> HostProfiler {
        HostProfiler::new()
    }
}

impl HostProfiler {
    /// Profiler whose epoch is "now".
    pub fn new() -> HostProfiler {
        HostProfiler {
            epoch: Instant::now(),
            spans: Vec::new(),
        }
    }

    /// Run `f`, recording its wall time under `label`.
    pub fn time<T>(&mut self, label: &str, f: impl FnOnce() -> T) -> T {
        let begin = Instant::now();
        let out = f();
        self.spans.push(HostSpan {
            label: label.to_string(),
            start: begin - self.epoch,
            duration: begin.elapsed(),
        });
        out
    }

    /// Completed spans, in completion order.
    pub fn spans(&self) -> &[HostSpan] {
        &self.spans
    }

    /// Total wall time across recorded spans.
    pub fn total(&self) -> Duration {
        self.spans.iter().map(|s| s.duration).sum()
    }

    /// Multi-line summary; with `sim_cycles` it also reports the simulated
    /// cycles retired per host second over the spans' total time.
    pub fn render_summary(&self, sim_cycles: Option<u64>) -> String {
        let mut out = String::from("host profile (wall time per phase):\n");
        let total = self.total();
        for s in &self.spans {
            let pct = if total.as_nanos() > 0 {
                100.0 * s.duration.as_secs_f64() / total.as_secs_f64()
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:<28} {:>9.3}s ({pct:>5.1}%)\n",
                s.label,
                s.duration.as_secs_f64()
            ));
        }
        out.push_str(&format!(
            "  {:<28} {:>9.3}s\n",
            "total",
            total.as_secs_f64()
        ));
        if let Some(cycles) = sim_cycles {
            if total.as_secs_f64() > 0.0 {
                out.push_str(&format!(
                    "  simulated cycles / host second: {:.0}\n",
                    cycles as f64 / total.as_secs_f64()
                ));
            }
        }
        out
    }
}

/// Approximate wall time spent inside each simulator component during a
/// run. Accumulated per `System::step` phase, so per-call timer overhead is
/// included; treat as relative weight, not absolute cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct ComponentTimes {
    /// DRAM channel ticks.
    pub dram: Duration,
    /// Cache-hierarchy deferred-fill flushing.
    pub cache: Duration,
    /// Core execute/commit ticks (includes cache lookups issued by cores).
    pub cpu: Duration,
    /// Virtual-memory work: migration epochs (faults are charged to cpu).
    pub vm: Duration,
}

impl ComponentTimes {
    /// Sum over components.
    pub fn total(&self) -> Duration {
        self.dram + self.cache + self.cpu + self.vm
    }

    /// Multi-line summary of the per-component split.
    pub fn render_summary(&self) -> String {
        let total = self.total();
        let pct = |d: Duration| {
            if total.as_nanos() > 0 {
                100.0 * d.as_secs_f64() / total.as_secs_f64()
            } else {
                0.0
            }
        };
        format!(
            "component wall time (approximate):\n  \
             cpu   {:>9.3}s ({:>5.1}%)\n  \
             dram  {:>9.3}s ({:>5.1}%)\n  \
             cache {:>9.3}s ({:>5.1}%)\n  \
             vm    {:>9.3}s ({:>5.1}%)\n",
            self.cpu.as_secs_f64(),
            pct(self.cpu),
            self.dram.as_secs_f64(),
            pct(self.dram),
            self.cache.as_secs_f64(),
            pct(self.cache),
            self.vm.as_secs_f64(),
            pct(self.vm),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_records_spans_in_order() {
        let mut p = HostProfiler::new();
        let x = p.time("alpha", || 41 + 1);
        assert_eq!(x, 42);
        p.time("beta", || std::thread::sleep(Duration::from_millis(1)));
        assert_eq!(p.spans().len(), 2);
        assert_eq!(p.spans()[0].label, "alpha");
        assert!(p.spans()[1].duration >= Duration::from_millis(1));
        assert!(p.total() >= Duration::from_millis(1));
        let s = p.render_summary(Some(1_000_000));
        assert!(s.contains("alpha"));
        assert!(s.contains("simulated cycles / host second"));
    }

    #[test]
    fn component_times_sum_and_render() {
        let t = ComponentTimes {
            dram: Duration::from_millis(2),
            cache: Duration::from_millis(1),
            cpu: Duration::from_millis(5),
            vm: Duration::from_millis(2),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
        let s = t.render_summary();
        assert!(s.contains("cpu"));
        assert!(s.contains("50.0%"));
    }
}
