//! Top-down CPI-stack attribution: splits every core cycle into exclusive
//! buckets and charges memory-stall cycles to the named object owning the
//! faulting address, split by serving tier and stall mechanism.
//!
//! The accountant is *observational*: the core classifies each cycle it
//! already simulates, so enabling attribution never changes simulated
//! behaviour (the golden digests stay bit-identical either way).
//!
//! Exclusivity rule (DESIGN.md §10): each cycle lands in exactly one
//! bucket, decided by a fixed priority — load-miss head stall first (the
//! exact condition that already increments `head_stall_cycles`, so the
//! bucket reconciles with the classifier's `stall_per_miss` inputs), then
//! MSHR-full back-pressure, then committing, ROB-full, frontend-empty, and
//! a residual `other`. The buckets therefore sum exactly to `cycles`.
//!
//! Tier and mechanism of a load-miss stall are only known when the DRAM
//! completion arrives, so cycles accrue against the load's *ticket* in a
//! pending list and move into the per-tag `[tier][mechanism]` table when
//! the system resolves the completion. Snapshots fold still-pending cycles
//! into the `unresolved` tier so per-object totals always reconcile.

use moca_common::ids::MemTag;
use moca_common::{Cycle, ModuleKind, ObjectId, Segment};
use serde::{Deserialize, Serialize};

/// Serving-tier axis: the four DRAM technologies plus `unresolved` (the
/// load had not completed when the stats were frozen).
pub const TIER_COUNT: usize = 5;

/// Index of the `unresolved` tier.
pub const TIER_UNRESOLVED: usize = 4;

/// Dense tier index of a module kind (stable, matches [`ModuleKind::ALL`]).
pub fn tier_index(kind: ModuleKind) -> usize {
    match kind {
        ModuleKind::Ddr3 => 0,
        ModuleKind::Lpddr2 => 1,
        ModuleKind::Rldram3 => 2,
        ModuleKind::Hbm => 3,
    }
}

/// Display name of a tier index (matches [`ModuleKind::name`]).
pub fn tier_name(tier: usize) -> &'static str {
    match tier {
        0 => "DDR3",
        1 => "LPDDR2",
        2 => "RLDRAM",
        3 => "HBM",
        _ => "unresolved",
    }
}

/// Why a load-miss stall lasted as long as it did, judged from its DRAM
/// completion. MSHR-full back-pressure is *not* a mechanism here: a
/// retried load never entered the memory hierarchy, so it is a top-level
/// bucket of its own ([`CycleBuckets::mshr_full`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mechanism {
    /// Plain row-hit service with no queueing: the baseline access time.
    Service,
    /// The request waited in the controller's read queue.
    QueueWait,
    /// The access closed another row in its bank (row-buffer conflict).
    BankConflict,
    /// The request arrived while its channel was refreshing.
    Refresh,
    /// The load was still in flight when the stats were frozen.
    Unresolved,
}

/// Number of mechanisms.
pub const MECH_COUNT: usize = 5;

impl Mechanism {
    /// All mechanisms, in index order.
    pub const ALL: [Mechanism; MECH_COUNT] = [
        Mechanism::Service,
        Mechanism::QueueWait,
        Mechanism::BankConflict,
        Mechanism::Refresh,
        Mechanism::Unresolved,
    ];

    /// Dense index.
    pub fn index(self) -> usize {
        match self {
            Mechanism::Service => 0,
            Mechanism::QueueWait => 1,
            Mechanism::BankConflict => 2,
            Mechanism::Refresh => 3,
            Mechanism::Unresolved => 4,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Service => "service",
            Mechanism::QueueWait => "queue-wait",
            Mechanism::BankConflict => "bank-conflict",
            Mechanism::Refresh => "refresh",
            Mechanism::Unresolved => "unresolved",
        }
    }

    /// Classify one DRAM read completion. Priority: refresh exposure
    /// dominates (it delays everything behind it), then a row-buffer
    /// conflict, then any queueing, else plain service.
    pub fn classify(refresh_delayed: bool, bank_conflict: bool, queue_cycles: u64) -> Mechanism {
        if refresh_delayed {
            Mechanism::Refresh
        } else if bank_conflict {
            Mechanism::BankConflict
        } else if queue_cycles > 0 {
            Mechanism::QueueWait
        } else {
            Mechanism::Service
        }
    }
}

/// The exclusive top-level CPI-stack buckets. Invariant: the six fields
/// sum exactly to the core's `cycles` counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBuckets {
    /// At least one instruction committed and the head was not a blocked
    /// LLC-missing load.
    pub committing: u64,
    /// The ROB head was an incomplete LLC-missing load (the exact
    /// condition of `head_stall_cycles`).
    pub load_miss: u64,
    /// The head was an unissued load and issue stopped on a full MSHR
    /// file this cycle.
    pub mshr_full: u64,
    /// Nothing committed and the ROB was full.
    pub rob_full: u64,
    /// The ROB was empty (frontend could not supply work).
    pub frontend_empty: u64,
    /// None of the above (e.g. head not done for non-miss reasons).
    pub other: u64,
}

impl CycleBuckets {
    /// Sum of all buckets — must equal the core's total cycles.
    pub fn total(&self) -> u64 {
        self.committing
            + self.load_miss
            + self.mshr_full
            + self.rob_full
            + self.frontend_empty
            + self.other
    }

    /// `(name, value)` pairs in display order.
    pub fn entries(&self) -> [(&'static str, u64); 6] {
        [
            ("committing", self.committing),
            ("load_miss", self.load_miss),
            ("mshr_full", self.mshr_full),
            ("rob_full", self.rob_full),
            ("frontend_empty", self.frontend_empty),
            ("other", self.other),
        ]
    }
}

/// Load-miss stall attribution for one tag: cycles by `[tier][mechanism]`
/// plus the MSHR-full cycles charged while this tag's load could not even
/// issue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagAttr {
    stall: Vec<u64>,
    /// Cycles the head was this tag's load blocked behind a full MSHR
    /// file (top-level bucket, kept per tag for reports).
    pub mshr_full_cycles: u64,
}

impl Default for TagAttr {
    fn default() -> TagAttr {
        TagAttr {
            stall: vec![0; TIER_COUNT * MECH_COUNT],
            mshr_full_cycles: 0,
        }
    }
}

impl TagAttr {
    /// Stall cycles attributed to `(tier, mechanism)`.
    pub fn get(&self, tier: usize, mech: Mechanism) -> u64 {
        self.stall[tier * MECH_COUNT + mech.index()]
    }

    /// Add stall cycles to `(tier, mechanism)`.
    pub fn add(&mut self, tier: usize, mech: Mechanism, cycles: u64) {
        self.stall[tier * MECH_COUNT + mech.index()] += cycles;
    }

    /// Total load-miss stall cycles over every tier and mechanism. By
    /// construction this equals the tag's `rob_head_stall_cycles`.
    pub fn total_stall(&self) -> u64 {
        self.stall.iter().sum()
    }

    /// Stall cycles per tier (summed over mechanisms).
    pub fn per_tier(&self) -> [u64; TIER_COUNT] {
        let mut out = [0u64; TIER_COUNT];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.stall[i * MECH_COUNT..(i + 1) * MECH_COUNT]
                .iter()
                .sum();
        }
        out
    }

    /// Stall cycles per mechanism (summed over tiers).
    pub fn per_mechanism(&self) -> [u64; MECH_COUNT] {
        let mut out = [0u64; MECH_COUNT];
        for (i, v) in self.stall.iter().enumerate() {
            out[i % MECH_COUNT] += v;
        }
        out
    }

    /// Tier with the most attributed stall (ties break toward the lowest
    /// index; `TIER_UNRESOLVED` if the tag has no resolved stall at all).
    pub fn dominant_tier(&self) -> usize {
        let per = self.per_tier();
        let mut best = TIER_UNRESOLVED;
        let mut best_v = 0u64;
        for (i, &v) in per.iter().enumerate().take(TIER_UNRESOLVED) {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        best
    }

    /// Merge another tag's attribution into this one.
    pub fn merge(&mut self, other: &TagAttr) {
        for (a, b) in self.stall.iter_mut().zip(other.stall.iter()) {
            *a += b;
        }
        self.mshr_full_cycles += other.mshr_full_cycles;
    }
}

/// Dense per-tag attribution table, mirroring the shape of the core's
/// `TagTable`: heap objects by dense id plus one slot per static segment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AttrTagTable {
    heap: Vec<TagAttr>,
    code: TagAttr,
    data: TagAttr,
    stack: TagAttr,
}

impl AttrTagTable {
    /// Mutable slot for `tag`, growing the heap table on demand.
    pub fn get_mut(&mut self, tag: MemTag) -> &mut TagAttr {
        match tag.segment {
            Segment::Heap => {
                let id = tag.object.expect("heap tag carries an object").0 as usize;
                if id >= self.heap.len() {
                    self.heap.resize(id + 1, TagAttr::default());
                }
                &mut self.heap[id]
            }
            Segment::Code => &mut self.code,
            Segment::Data => &mut self.data,
            Segment::Stack => &mut self.stack,
        }
    }

    /// Attribution of one heap object (default if never charged).
    pub fn object(&self, id: ObjectId) -> TagAttr {
        self.heap.get(id.0 as usize).cloned().unwrap_or_default()
    }

    /// Attribution of one non-heap segment (`Heap` sums every object).
    pub fn segment(&self, seg: Segment) -> TagAttr {
        match seg {
            Segment::Code => self.code.clone(),
            Segment::Data => self.data.clone(),
            Segment::Stack => self.stack.clone(),
            Segment::Heap => {
                let mut total = TagAttr::default();
                for t in &self.heap {
                    total.merge(t);
                }
                total
            }
        }
    }

    /// Number of heap object slots.
    pub fn objects(&self) -> usize {
        self.heap.len()
    }

    /// Iterate `(ObjectId, attribution)` over heap objects.
    pub fn iter_objects(&self) -> impl Iterator<Item = (ObjectId, &TagAttr)> + '_ {
        self.heap
            .iter()
            .enumerate()
            .map(|(i, t)| (ObjectId(i as u32), t))
    }

    /// Total load-miss stall over every tag (objects and segments).
    pub fn total_stall(&self) -> u64 {
        self.heap.iter().map(TagAttr::total_stall).sum::<u64>()
            + self.code.total_stall()
            + self.data.total_stall()
            + self.stack.total_stall()
    }
}

/// One head-stall accrual awaiting its completion's tier/mechanism.
#[derive(Debug, Clone, Copy)]
struct PendingStall {
    ticket: u64,
    tag: MemTag,
    cycles: u64,
}

/// Frozen, serializable attribution for one core: the exclusive cycle
/// buckets plus the per-tag `[tier][mechanism]` stall table with every
/// pending accrual folded into the `unresolved` tier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttrSnapshot {
    /// Exclusive top-level buckets (sum == core cycles).
    pub buckets: CycleBuckets,
    /// Per-tag stall attribution.
    pub tags: AttrTagTable,
}

/// Working attribution state owned by one core. All methods are
/// allocation-light and safe to call from the core's tick path; the state
/// is strictly write-only with respect to the simulation (nothing in the
/// core reads it back to make decisions).
#[derive(Debug, Clone, Default)]
pub struct CoreAttr {
    /// Exclusive top-level buckets.
    pub buckets: CycleBuckets,
    /// Resolved per-tag stall attribution.
    pub tags: AttrTagTable,
    pending: Vec<PendingStall>,
    completed: Vec<(u64, u64)>,
}

impl CoreAttr {
    /// Fresh, zeroed state.
    pub fn new() -> CoreAttr {
        CoreAttr::default()
    }

    /// Charge `cycles` of load-miss head stall against in-flight load
    /// `ticket` owning `tag`. Tier/mechanism are unknown until the
    /// completion resolves, so the cycles accrue in a pending list.
    pub fn charge_load_miss(&mut self, ticket: u64, tag: MemTag, cycles: u64) {
        if let Some(p) = self.pending.iter_mut().find(|p| p.ticket == ticket) {
            p.cycles += cycles;
        } else {
            self.pending.push(PendingStall {
                ticket,
                tag,
                cycles,
            });
        }
    }

    /// Record that `ticket` (ROB sequence `seq`) completed this cycle,
    /// before the core's tick classified it. Lets the tick's skipped-window
    /// accounting find the ticket of an already-completed head load.
    pub fn note_completion(&mut self, ticket: u64, seq: u64) {
        self.completed.push((ticket, seq));
    }

    /// Ticket of an already-completed ROB entry `seq`, if it completed at
    /// the current cycle.
    pub fn completed_ticket_of(&self, seq: u64) -> Option<u64> {
        self.completed
            .iter()
            .find(|&&(_, s)| s == seq)
            .map(|&(t, _)| t)
    }

    /// Forget this cycle's completion notes (call at the end of a tick).
    pub fn end_tick(&mut self) {
        self.completed.clear();
    }

    /// Move `ticket`'s accrued stall into the per-tag table under
    /// `(tier, mechanism)`. No-op if the ticket never accrued stall.
    pub fn resolve(&mut self, ticket: u64, tier: usize, mech: Mechanism) {
        if let Some(i) = self.pending.iter().position(|p| p.ticket == ticket) {
            let p = self.pending.swap_remove(i);
            self.tags.get_mut(p.tag).add(tier, mech, p.cycles);
        }
    }

    /// Load-miss cycles accrued but not yet resolved to a tier.
    pub fn pending_cycles(&self) -> u64 {
        self.pending.iter().map(|p| p.cycles).sum()
    }

    /// Frozen snapshot: pending accruals fold into the `unresolved` tier
    /// so per-tag totals reconcile exactly with `rob_head_stall_cycles`.
    pub fn snapshot(&self) -> AttrSnapshot {
        let mut tags = self.tags.clone();
        for p in &self.pending {
            tags.get_mut(p.tag)
                .add(TIER_UNRESOLVED, Mechanism::Unresolved, p.cycles);
        }
        AttrSnapshot {
            buckets: self.buckets,
            tags,
        }
    }

    /// Zero every counter (used when warmup stats are discarded).
    pub fn reset(&mut self) {
        self.buckets = CycleBuckets::default();
        self.tags = AttrTagTable::default();
        self.pending.clear();
        self.completed.clear();
    }
}

/// One occupancy-timeline point, sampled at a metrics-window boundary:
/// free-frame headroom per module kind plus cumulative migration counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OccupancySample {
    /// Cycle the sample was taken at (window end).
    pub at: Cycle,
    /// `(module-kind name, free frames)` for each kind present.
    pub free_frames: Vec<(String, u64)>,
    /// Cumulative pages promoted by the migration engine so far.
    pub promotions: u64,
    /// Cumulative pages demoted so far.
    pub demotions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap(id: u32) -> MemTag {
        MemTag::heap(ObjectId(id))
    }

    #[test]
    fn buckets_total_sums_all_fields() {
        let b = CycleBuckets {
            committing: 1,
            load_miss: 2,
            mshr_full: 3,
            rob_full: 4,
            frontend_empty: 5,
            other: 6,
        };
        assert_eq!(b.total(), 21);
        assert_eq!(b.entries().iter().map(|(_, v)| v).sum::<u64>(), 21);
    }

    #[test]
    fn mechanism_classification_priority() {
        use Mechanism::*;
        assert_eq!(Mechanism::classify(true, true, 5), Refresh);
        assert_eq!(Mechanism::classify(false, true, 5), BankConflict);
        assert_eq!(Mechanism::classify(false, false, 5), QueueWait);
        assert_eq!(Mechanism::classify(false, false, 0), Service);
        for m in Mechanism::ALL {
            assert_eq!(Mechanism::ALL[m.index()], m);
        }
    }

    #[test]
    fn tier_index_round_trips_names() {
        for kind in ModuleKind::ALL {
            assert_eq!(tier_name(tier_index(kind)), kind.name());
        }
        assert_eq!(tier_name(TIER_UNRESOLVED), "unresolved");
    }

    #[test]
    fn charge_resolve_moves_cycles_to_tag_table() {
        let mut a = CoreAttr::new();
        a.charge_load_miss(7, heap(0), 10);
        a.charge_load_miss(7, heap(0), 5);
        a.charge_load_miss(9, heap(1), 3);
        assert_eq!(a.pending_cycles(), 18);
        a.resolve(7, tier_index(ModuleKind::Hbm), Mechanism::QueueWait);
        assert_eq!(a.pending_cycles(), 3);
        assert_eq!(
            a.tags
                .object(ObjectId(0))
                .get(tier_index(ModuleKind::Hbm), Mechanism::QueueWait),
            15
        );
        // Resolving an unknown ticket is a no-op.
        a.resolve(42, 0, Mechanism::Service);
        assert_eq!(a.pending_cycles(), 3);
    }

    #[test]
    fn snapshot_folds_pending_into_unresolved() {
        let mut a = CoreAttr::new();
        a.charge_load_miss(1, heap(2), 4);
        a.resolve(1, 0, Mechanism::Service);
        a.charge_load_miss(2, heap(2), 6);
        let snap = a.snapshot();
        let t = snap.tags.object(ObjectId(2));
        assert_eq!(t.total_stall(), 10);
        assert_eq!(t.get(TIER_UNRESOLVED, Mechanism::Unresolved), 6);
        // The working state is untouched: pending still pending.
        assert_eq!(a.pending_cycles(), 6);
        assert_eq!(a.tags.object(ObjectId(2)).total_stall(), 4);
    }

    #[test]
    fn completion_notes_clear_at_end_of_tick() {
        let mut a = CoreAttr::new();
        a.note_completion(11, 3);
        assert_eq!(a.completed_ticket_of(3), Some(11));
        assert_eq!(a.completed_ticket_of(4), None);
        a.end_tick();
        assert_eq!(a.completed_ticket_of(3), None);
    }

    #[test]
    fn dominant_tier_and_axis_sums() {
        let mut t = TagAttr::default();
        t.add(0, Mechanism::Service, 2);
        t.add(3, Mechanism::Refresh, 9);
        t.add(3, Mechanism::QueueWait, 1);
        assert_eq!(t.dominant_tier(), 3);
        assert_eq!(t.per_tier()[3], 10);
        assert_eq!(t.per_mechanism()[Mechanism::Refresh.index()], 9);
        assert_eq!(t.total_stall(), 12);
        let empty = TagAttr::default();
        assert_eq!(empty.dominant_tier(), TIER_UNRESOLVED);
    }

    #[test]
    fn segment_and_object_routing_matches_tag_table() {
        let mut table = AttrTagTable::default();
        table.get_mut(heap(1)).add(0, Mechanism::Service, 5);
        table
            .get_mut(MemTag::segment(Segment::Stack))
            .add(1, Mechanism::QueueWait, 2);
        assert_eq!(table.object(ObjectId(1)).total_stall(), 5);
        assert_eq!(table.object(ObjectId(0)).total_stall(), 0);
        assert_eq!(table.segment(Segment::Stack).total_stall(), 2);
        assert_eq!(table.segment(Segment::Heap).total_stall(), 5);
        assert_eq!(table.total_stall(), 7);
        assert_eq!(table.objects(), 2);
    }
}
