//! Chrome-trace / Perfetto JSON export.
//!
//! Produces the Trace Event Format JSON object (`{"traceEvents": [...]}`)
//! that `chrome://tracing`, Perfetto UI, and Speedscope all load. Simulated
//! activity renders on pid 0 (cycle stamps become microseconds: 1 cycle =
//! 1 ns at the 1 GHz core, so ts = cycles / 1000); host self-profiling
//! spans render on pid 1 in real wall time.

use crate::event::TimedEvent;
use crate::profiler::HostProfiler;
use crate::registry::Registry;
use moca_common::Cycle;
use serde::{Serialize, Value};
use std::io::Write;
use std::path::Path;

/// Simulation process id in the trace.
const PID_SIM: u64 = 0;
/// Host (repro driver) process id in the trace.
const PID_HOST: u64 = 1;

fn us(cycles: Cycle) -> Value {
    Value::F64(cycles as f64 / 1000.0)
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn metadata(pid: u64, process_name: &str) -> Value {
    obj(vec![
        ("name", Value::Str("process_name".into())),
        ("ph", Value::Str("M".into())),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(0)),
        ("args", obj(vec![("name", Value::Str(process_name.into()))])),
    ])
}

fn instant(te: &TimedEvent) -> Value {
    // The derived serialization is externally tagged ({"Variant": {fields}});
    // unwrap the tag so the fields land directly in "args".
    let payload = match te.event.to_value() {
        Value::Object(mut fields) if fields.len() == 1 => fields.pop().unwrap().1,
        other => other,
    };
    obj(vec![
        ("name", Value::Str(te.event.kind_name().into())),
        ("cat", Value::Str("sim".into())),
        ("ph", Value::Str("i".into())),
        ("s", Value::Str("t".into())),
        ("ts", us(te.at)),
        ("pid", Value::U64(PID_SIM)),
        ("tid", Value::U64(te.event.track() as u64)),
        ("args", payload),
    ])
}

/// Write the combined trace: one instant per captured event, one counter
/// track per windowed metric, and one complete-span per host phase.
///
/// Creates the parent directory if missing; errors carry the path.
pub fn write_chrome_trace(
    path: &Path,
    events: &[TimedEvent],
    registry: &Registry,
    host: Option<&HostProfiler>,
) -> std::io::Result<()> {
    let mut trace_events: Vec<Value> = Vec::new();
    trace_events.push(metadata(PID_SIM, "moca simulation"));
    if host.is_some() {
        trace_events.push(metadata(PID_HOST, "repro host"));
    }

    for te in events {
        trace_events.push(instant(te));
    }

    for w in registry.windows() {
        for (name, value) in &w.samples {
            trace_events.push(obj(vec![
                ("name", Value::Str(name.clone())),
                ("ph", Value::Str("C".into())),
                ("ts", us(w.end)),
                ("pid", Value::U64(PID_SIM)),
                ("tid", Value::U64(0)),
                ("args", obj(vec![(name.as_str(), Value::F64(*value))])),
            ]));
        }
    }

    if let Some(prof) = host {
        for span in prof.spans() {
            trace_events.push(obj(vec![
                ("name", Value::Str(span.label.clone())),
                ("cat", Value::Str("host".into())),
                ("ph", Value::Str("X".into())),
                ("ts", Value::F64(span.start.as_secs_f64() * 1e6)),
                ("dur", Value::F64(span.duration.as_secs_f64() * 1e6)),
                ("pid", Value::U64(PID_HOST)),
                ("tid", Value::U64(0)),
            ]));
        }
    }

    let root = obj(vec![
        ("traceEvents", Value::Array(trace_events)),
        ("displayTimeUnit", Value::Str("ns".into())),
    ]);
    let body = serde_json::to_string(&root)
        .map_err(|e| std::io::Error::other(format!("trace serialization failed: {e}")))?;

    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| {
                std::io::Error::new(
                    e.kind(),
                    format!("cannot create trace directory {}: {e}", dir.display()),
                )
            })?;
        }
    }
    let mut f = std::fs::File::create(path).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!("cannot create trace file {}: {e}", path.display()),
        )
    })?;
    f.write_all(body.as_bytes()).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!("cannot write trace file {}: {e}", path.display()),
        )
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::registry::WindowSnapshot;

    #[test]
    fn trace_file_is_valid_chrome_json() {
        let dir = std::env::temp_dir().join("moca_tel_trace_test");
        let path = dir.join("deep").join("out.trace.json");

        let events = vec![
            TimedEvent {
                at: 1_500,
                event: Event::MshrFullStall { core: 2 },
            },
            TimedEvent {
                at: 2_000,
                event: Event::BankConflict {
                    channel: 1,
                    bank: 7,
                },
            },
        ];
        let mut reg = Registry::new();
        reg.push_window(WindowSnapshot {
            start: 0,
            end: 50_000,
            samples: vec![("ipc.core0".into(), 1.25)],
        });
        let mut prof = HostProfiler::new();
        prof.time("phase", || ());

        write_chrome_trace(&path, &events, &reg, Some(&prof)).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let v = serde_json::parse(&body).unwrap();
        let list = v.get("traceEvents").and_then(|t| t.as_array()).unwrap();
        // 2 metadata + 2 instants + 1 counter + 1 host span.
        assert_eq!(list.len(), 6);
        for e in list {
            assert!(e.get("name").is_some());
            assert!(e.get("pid").is_some());
            let ph = e.get("ph").and_then(|p| p.as_str()).unwrap();
            assert!(["M", "i", "C", "X"].contains(&ph), "unexpected ph {ph}");
        }
        // The instant's args carry the unwrapped event fields.
        let stall = list
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("mshr_full_stall"))
            .unwrap();
        assert_eq!(
            stall
                .get("args")
                .and_then(|a| a.get("core"))
                .and_then(|c| c.as_u64()),
            Some(2)
        );
        assert!((stall.get("ts").and_then(|t| t.as_f64()).unwrap() - 1.5).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).ok();
    }
}
