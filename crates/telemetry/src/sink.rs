//! Event sinks: where cycle-stamped events go.
//!
//! The simulator emits through the [`Sink`] trait; the implementation picks
//! the cost model. [`NullSink`] discards (the default — zero overhead),
//! [`RingSink`] keeps the most recent N events in memory for post-run export,
//! [`JsonlSink`] streams every event to disk as one JSON object per line.

use crate::event::{Event, TimedEvent};
use moca_common::Cycle;
use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;

/// Receives cycle-stamped events. Implementations must be purely
/// observational: emitting may never influence the simulation.
pub trait Sink {
    /// Record one event at cycle `at`.
    fn emit(&mut self, at: Cycle, event: Event);

    /// Take every buffered event out of the sink. Streaming sinks (which
    /// hold nothing) return an empty vector.
    fn drain(&mut self) -> Vec<TimedEvent> {
        Vec::new()
    }

    /// Flush buffered output to its destination (streaming sinks).
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&mut self, _at: Cycle, _event: Event) {}
}

/// Bounded in-memory ring buffer: keeps the most recent `capacity` events
/// and counts how many older ones were overwritten.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<TimedEvent>,
    dropped: u64,
}

impl RingSink {
    /// Ring holding at most `capacity` events (`capacity` must be > 0).
    pub fn new(capacity: usize) -> RingSink {
        assert!(capacity > 0, "ring sink needs capacity");
        RingSink {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate the buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.buf.iter()
    }
}

impl Sink for RingSink {
    fn emit(&mut self, at: Cycle, event: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TimedEvent { at, event });
    }

    fn drain(&mut self) -> Vec<TimedEvent> {
        self.buf.drain(..).collect()
    }
}

/// Streams events to a file as JSON Lines: `{"at":<cycle>,"event":{...}}`.
///
/// Creates the parent directory if missing. I/O errors after a successful
/// open are reported once on stderr and further events are discarded — a
/// full disk must not abort a long simulation.
#[derive(Debug)]
pub struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
    failed: bool,
    written: u64,
}

impl JsonlSink {
    /// Create (truncate) `path`, making parent directories as needed.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| {
                    std::io::Error::new(
                        e.kind(),
                        format!("cannot create trace directory {}: {e}", dir.display()),
                    )
                })?;
            }
        }
        let file = std::fs::File::create(path).map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!("cannot create event log {}: {e}", path.display()),
            )
        })?;
        Ok(JsonlSink {
            out: std::io::BufWriter::new(file),
            failed: false,
            written: 0,
        })
    }

    /// Events successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl Sink for JsonlSink {
    fn emit(&mut self, at: Cycle, event: Event) {
        if self.failed {
            return;
        }
        let line = serde_json::to_string(&TimedEvent { at, event }).expect("events serialize");
        if let Err(e) = writeln!(self.out, "{line}") {
            eprintln!("telemetry: event log write failed, disabling sink: {e}");
            self.failed = true;
            return;
        }
        self.written += 1;
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// A run that panics or returns early without calling `flush` must still
/// leave parseable (line-complete) telemetry on disk.
impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventIntent;

    fn ev(core: u32) -> Event {
        Event::MshrFullStall { core }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut ring = RingSink::new(3);
        for i in 0..5 {
            ring.emit(i as Cycle, ev(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let ats: Vec<Cycle> = ring.events().map(|t| t.at).collect();
        assert_eq!(ats, vec![2, 3, 4]);
        let drained = ring.drain();
        assert_eq!(drained.len(), 3);
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        let dir = std::env::temp_dir().join("moca_tel_jsonl_drop_test");
        let path = dir.join("events.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.emit(3, ev(1));
            // No explicit flush: the Drop impl must leave the line on disk.
        }
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 1);
        assert!(serde_json::parse(body.lines().next().unwrap()).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let dir = std::env::temp_dir().join("moca_tel_jsonl_test");
        let path = dir.join("nested").join("events.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.emit(7, ev(0));
        sink.emit(
            9,
            Event::PageFault {
                app: 1,
                vpn: 42,
                intent: EventIntent::Code,
            },
        );
        sink.flush().unwrap();
        assert_eq!(sink.written(), 2);
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = serde_json::parse(line).unwrap();
            assert!(v.get("at").and_then(|a| a.as_u64()).is_some(), "{line}");
            assert!(v.get("event").is_some(), "{line}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
