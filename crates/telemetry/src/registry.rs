//! Hierarchical metric registry: counters, gauges, log2 histograms, and
//! periodic windowed snapshots.
//!
//! Names are dot-separated paths (`events.page_fault`, `dram.read_latency`,
//! `ipc.core0`). Registration returns a dense id so the hot path bumps a
//! `Vec` slot instead of hashing a string.

use moca_common::Cycle;
use serde::Serialize;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(pub(crate) usize);

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i - 1]`, up to the full u64 range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Fixed-bucket log2 histogram of `u64` samples.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index a value falls into.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// Inclusive value range `(lo, hi)` covered by bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS);
        if i == 0 {
            (0, 0)
        } else if i == 64 {
            (1 << 63, u64::MAX)
        } else {
            (1 << (i - 1), (1 << i) - 1)
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Non-empty buckets as `(range_lo, range_hi, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_range(i);
                (lo, hi, c)
            })
    }

    /// Upper bound of the bucket containing the `q`-quantile (0.0..=1.0) of
    /// recorded samples, or `None` if empty. Bucketed, so an approximation.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_range(i).1);
            }
        }
        Some(u64::MAX)
    }
}

/// One periodic sampling window: derived rates and occupancies captured over
/// `[start, end)` simulated cycles.
#[derive(Debug, Clone, Serialize)]
pub struct WindowSnapshot {
    /// First cycle of the window.
    pub start: Cycle,
    /// One-past-last cycle of the window.
    pub end: Cycle,
    /// Named samples (e.g. `ipc.core0`, `readq.ch1`, `free_frames.HBM`).
    pub samples: Vec<(String, f64)>,
}

/// Registry of named counters, gauges, and histograms plus the sequence of
/// periodic window snapshots.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
    windows: Vec<WindowSnapshot>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register (or find) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Register (or find) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register (or find) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms.push((name.to_string(), Histogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Increment a counter by 1.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Add `delta` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].1 += delta;
    }

    /// Set a gauge to `value`.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Record one histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].1.observe(value);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Current value of a counter looked up by name.
    pub fn counter_value_by_name(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].1
    }

    /// Histogram looked up by name.
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// All counters as `(name, value)`, registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Append a completed sampling window.
    pub fn push_window(&mut self, w: WindowSnapshot) {
        self.windows.push(w);
    }

    /// All sampling windows, oldest first.
    pub fn windows(&self) -> &[WindowSnapshot] {
        &self.windows
    }

    /// Human-readable multi-line summary of counters, histograms, and
    /// window count, for the end-of-run report.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str("telemetry counters:\n");
        for (name, v) in self.counters.iter() {
            out.push_str(&format!("  {name:<32} {v}\n"));
        }
        for (name, h) in self.histograms.iter() {
            match (h.mean(), h.min(), h.max()) {
                (Some(mean), Some(min), Some(max)) => {
                    out.push_str(&format!(
                        "  {name:<32} n={} mean={mean:.1} min={min} p50<={} p99<={} max={max}\n",
                        h.count(),
                        h.quantile(0.50).unwrap(),
                        h.quantile(0.99).unwrap(),
                    ));
                }
                _ => out.push_str(&format!("  {name:<32} (no samples)\n")),
            }
        }
        if !self.windows.is_empty() {
            out.push_str(&format!(
                "  metric windows: {} ({} samples each)\n",
                self.windows.len(),
                self.windows.first().map_or(0, |w| w.samples.len()),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2_with_zero_bucket() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Every bucket's range round-trips through bucket_index.
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_range(i);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi), i);
        }
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let mut h = Histogram::new();
        assert!(h.mean().is_none());
        assert!(h.quantile(0.5).is_none());
        for v in [0u64, 1, 2, 3, 100, 100, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1306);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        // p50 of 8 samples is rank 4 → value 3 → bucket (2,3).
        assert_eq!(h.quantile(0.5), Some(3));
        // p99 → rank 8 → value 1000 → bucket (512,1023).
        assert_eq!(h.quantile(0.99), Some(1023));
        let nz: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(nz.first().unwrap(), &(0, 0, 1));
        assert!(nz
            .iter()
            .any(|&(lo, hi, c)| lo == 64 && hi == 127 && c == 3));
    }

    #[test]
    fn registry_dedups_names_and_tracks_values() {
        let mut r = Registry::new();
        let a = r.counter("events.page_fault");
        let b = r.counter("events.page_fault");
        assert_eq!(a, b);
        r.inc(a);
        r.add(a, 4);
        assert_eq!(r.counter_value(a), 5);
        assert_eq!(r.counter_value_by_name("events.page_fault"), Some(5));
        assert_eq!(r.counter_value_by_name("missing"), None);

        let g = r.gauge("frame_pool.headroom");
        r.set(g, 0.75);
        assert!((r.gauge_value(g) - 0.75).abs() < 1e-12);

        let h = r.histogram("dram.read_latency");
        r.observe(h, 42);
        assert_eq!(r.histogram_by_name("dram.read_latency").unwrap().count(), 1);

        r.push_window(WindowSnapshot {
            start: 0,
            end: 1000,
            samples: vec![("ipc.core0".into(), 1.5)],
        });
        assert_eq!(r.windows().len(), 1);
        let summary = r.render_summary();
        assert!(summary.contains("events.page_fault"));
        assert!(summary.contains("dram.read_latency"));
    }
}
