//! Progress reporting for long repro runs: timestamped lines to stderr and,
//! optionally, to a log file so detached runs can be tailed.

use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// Emits `[repro +12.3s] message` lines to stderr and (if a path was given
/// and writable) to a progress log. File problems never abort the run: they
/// are reported once and the reporter falls back to stderr only.
#[derive(Debug)]
pub struct ProgressReporter {
    t0: Instant,
    file: Option<std::fs::File>,
    quiet: bool,
}

impl ProgressReporter {
    /// Reporter writing to stderr plus, if `log_path` is given, an appended
    /// log file (parent directories are created as needed).
    pub fn new(log_path: Option<&Path>) -> ProgressReporter {
        let file = log_path.and_then(|path| {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        eprintln!(
                            "repro: cannot create log directory {}: {e}; \
                             progress goes to stderr only",
                            dir.display()
                        );
                        return None;
                    }
                }
            }
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                Ok(f) => Some(f),
                Err(e) => {
                    eprintln!(
                        "repro: cannot open progress log {}: {e}; \
                         progress goes to stderr only",
                        path.display()
                    );
                    None
                }
            }
        });
        ProgressReporter {
            t0: Instant::now(),
            file,
            quiet: false,
        }
    }

    /// Silence stderr output (`--quiet`); the log file, if any, still
    /// receives every line.
    pub fn set_quiet(&mut self, quiet: bool) {
        self.quiet = quiet;
    }

    /// Report one progress line.
    pub fn step(&mut self, msg: &str) {
        let line = format!("[repro +{:.1}s] {msg}", self.t0.elapsed().as_secs_f64());
        if !self.quiet {
            eprintln!("{line}");
        }
        if let Some(f) = &mut self.file {
            if writeln!(f, "{line}").and_then(|()| f.flush()).is_err() {
                if !self.quiet {
                    eprintln!("repro: progress log write failed; continuing on stderr only");
                }
                self.file = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logs_to_file_and_survives_bad_path() {
        let dir = std::env::temp_dir().join("moca_tel_progress_test");
        let path = dir.join("sub").join("progress.log");
        let mut rep = ProgressReporter::new(Some(&path));
        rep.step("phase one");
        rep.step("phase two");
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2);
        assert!(body.contains("phase one"));
        assert!(body.lines().all(|l| l.starts_with("[repro +")));
        std::fs::remove_dir_all(&dir).ok();

        // An unopenable path degrades to stderr-only, not a panic.
        let bad = Path::new("/proc/definitely/not/writable/progress.log");
        let mut rep = ProgressReporter::new(Some(bad));
        rep.step("still alive");
    }

    #[test]
    fn quiet_mode_still_writes_the_log_file() {
        let dir = std::env::temp_dir().join("moca_tel_progress_quiet_test");
        let path = dir.join("progress.log");
        let mut rep = ProgressReporter::new(Some(&path));
        rep.set_quiet(true);
        rep.step("silent phase");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("silent phase"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
